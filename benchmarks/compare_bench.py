#!/usr/bin/env python
"""Diff a fresh ``BENCH_results.json`` against the committed baseline.

CI runs this after the benchmark-smoke job: it prints a per-benchmark delta
table either way and exits non-zero only when an *engine-core* benchmark
(``benchmarks/test_bench_engine_core.py``) regresses by more than the
threshold (default 25 % wall-clock).  The other figure benchmarks are noisy
reproductions, so they are reported but never gate.

Times are compared on ``best_wall_time_s`` (best-of-N, recorded by the
benchmarks conftest for tests using the ``benchmark`` fixture) and fall back
to the raw call-phase ``wall_time_s`` when no rounds were recorded.

Refresh the baseline after an intentional performance change with::

    REPRO_BENCH_RESULTS=BENCH_results.json pytest benchmarks -q -k engine
    python benchmarks/compare_bench.py --update
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
from typing import Dict, Optional, Tuple

#: Benchmarks whose regressions fail the build.
GATED_PREFIX = "benchmarks/test_bench_engine_core.py"

DEFAULT_BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_baseline.json")
DEFAULT_FRESH = "BENCH_results.json"


def load_times(path: str) -> Dict[str, float]:
    """nodeid → wall time (best-of-N when recorded) for passed benchmarks."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    times: Dict[str, float] = {}
    for record in payload.get("benchmarks", []):
        if record.get("outcome") not in (None, "passed"):
            continue
        value = record.get("best_wall_time_s", record.get("wall_time_s"))
        if value is not None:
            times[record["nodeid"]] = float(value)
    return times


def format_row(nodeid: str, base: Optional[float], fresh: Optional[float]) -> Tuple[str, Optional[float]]:
    """One table line plus the signed delta fraction (None when incomparable)."""
    name = nodeid.split("::")[-1]
    if base is None:
        return f"{name:<44} {'—':>10} {fresh:>9.3f}s {'new':>9}", None
    if fresh is None:
        return f"{name:<44} {base:>9.3f}s {'—':>10} {'missing':>9}", None
    delta = (fresh - base) / base if base > 0 else 0.0
    return f"{name:<44} {base:>9.3f}s {fresh:>9.3f}s {delta:>+8.1%}", delta


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=DEFAULT_BASELINE, help="committed baseline artifact")
    parser.add_argument("--fresh", default=DEFAULT_FRESH, help="freshly produced artifact")
    parser.add_argument(
        "--fail-over",
        type=float,
        default=25.0,
        help="maximum tolerated slowdown (%%) on engine-core benchmarks",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy the fresh artifact over the baseline instead of diffing",
    )
    args = parser.parse_args(argv)

    if args.update:
        shutil.copyfile(args.fresh, args.baseline)
        print(f"baseline updated: {args.fresh} -> {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run with --update to create one")
        return 0

    baseline = load_times(args.baseline)
    fresh = load_times(args.fresh)
    threshold = args.fail_over / 100.0

    print(f"{'benchmark':<44} {'baseline':>10} {'fresh':>10} {'delta':>9}")
    regressions = []
    for nodeid in sorted(baseline.keys() | fresh.keys()):
        line, delta = format_row(nodeid, baseline.get(nodeid), fresh.get(nodeid))
        gated = nodeid.startswith(GATED_PREFIX)
        if gated and delta is not None and delta > threshold:
            regressions.append((nodeid, delta))
            line += "  << REGRESSION"
        elif not gated:
            line += "  (ungated)"
        print(line)

    if regressions:
        print()
        print(
            f"{len(regressions)} engine benchmark(s) regressed more than "
            f"{args.fail_over:.0f}% vs {args.baseline}:"
        )
        for nodeid, delta in regressions:
            print(f"  {nodeid}: {delta:+.1%}")
        return 1
    print()
    print(f"no engine-core regression beyond {args.fail_over:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
