"""Fig. 9 — total network throughput versus gateway density."""

from benchmarks.conftest import SWEEP_SCALE
from repro.experiments.figures import figure09_throughput
from repro.experiments.reporting import format_figure_rows


def test_bench_fig09_throughput(benchmark, density_sweep):
    rows = benchmark.pedantic(
        figure09_throughput, args=(density_sweep,), rounds=1, iterations=1
    )
    print()
    print(format_figure_rows("Fig. 9 — total throughput (messages delivered)", rows,
                             unit="messages"))

    assert all(row.value >= 0 for row in rows)

    # Qualitative acceptance (paper: ROBC improves throughput over plain
    # LoRaWAN, most visibly in the rural setting at low gateway density).
    def total(scheme):
        return sum(
            row.value for row in rows
            if row.scheme == scheme and row.environment == "rural"
        )

    lowest = min(SWEEP_SCALE.gateway_counts)
    baseline_low = next(
        row.value for row in rows
        if row.scheme == "no-routing" and row.environment == "rural"
        and row.num_gateways == lowest
    )
    robc_low = next(
        row.value for row in rows
        if row.scheme == "robc" and row.environment == "rural"
        and row.num_gateways == lowest
    )
    assert robc_low >= 0.9 * baseline_low
    assert total("robc") > 0 and total("rca-etx") > 0
