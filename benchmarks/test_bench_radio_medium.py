"""Micro-benchmark of the RadioMedium hot path.

The medium is consulted on every uplink completion (gateway resolution plus
one decodability check per overhearer), so its cost scales with the number of
concurrently registered transmissions.  The benchmark drives a congested
window — many overlapping frames spread over channels and spreading factors —
through transmit → resolve → prune, the exact per-completion sequence the
engine performs, and pins the orthogonality bookkeeping with deterministic
assertions.
"""

from repro.phy.constants import SpreadingFactor
from repro.radio.config import RadioConfig
from repro.radio.medium import RadioMedium

NUM_TRANSMITTERS = 300
NUM_CHANNELS = 3
GATEWAYS = tuple(f"gw-{i:02d}" for i in range(8))
SFS = tuple(SpreadingFactor)

#: Short enough that pruning actually fires inside the ~3 s driven window
#: (a frame is dropped half a second after it ends, so it can no longer
#: overlap anything registered later — results are retention-independent).
RETENTION_S = 0.5


def _drive_medium():
    medium = RadioMedium(
        config=RadioConfig(num_channels=NUM_CHANNELS), retention_s=RETENTION_S
    )
    delivered = 0
    for i in range(NUM_TRANSMITTERS):
        start = 0.01 * i
        sf = SFS[i % len(SFS)]
        channel = i % NUM_CHANNELS
        rssi = {gw: -70.0 - (i % 40) for gw in GATEWAYS}
        transmission = medium.transmit(
            f"dev-{i:04d}", start, 100, rssi, sf, channel
        )
        if medium.resolve_gateway_reception(transmission, GATEWAYS) is not None:
            delivered += 1
        medium.prune(start)
    return delivered, len(medium)


def test_bench_radio_medium(benchmark):
    delivered, registry_size = benchmark.pedantic(_drive_medium, rounds=3, iterations=1)

    # Deterministic cross-check (no RNG was given, so reception is the
    # threshold rule): frames sharing (SF, channel) overlap heavily at equal
    # RSSI and destroy each other, but the 6 SF × 3 channel grid keeps the
    # 18 orthogonal classes from interfering across classes.
    assert (delivered, registry_size) == _drive_medium()
    assert 0 < delivered < NUM_TRANSMITTERS
    # Pruning dropped at least a third of the frames put on the air (long
    # SF11/SF12 frames legitimately linger) — the interference scan stays
    # O(live frames), not O(total).
    assert registry_size < NUM_TRANSMITTERS - 100
    print()
    print(
        f"radio medium: {NUM_TRANSMITTERS} frames, {len(GATEWAYS)} gateways, "
        f"{NUM_CHANNELS} channels x {len(SFS)} SFs -> {delivered} delivered, "
        f"{registry_size} left registered after pruning"
    )
