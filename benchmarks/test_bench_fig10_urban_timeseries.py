"""Fig. 10 — throughput over the day, urban (500 m device-to-device range)."""

from benchmarks.conftest import TIMESERIES_SCALE
from repro.experiments.figures import figure10_urban_timeseries
from repro.experiments.reporting import format_timeseries


def test_bench_fig10_urban_timeseries(benchmark):
    series = benchmark.pedantic(
        figure10_urban_timeseries, args=(TIMESERIES_SCALE,), rounds=1, iterations=1
    )
    print()
    print(format_timeseries("Fig. 10 — messages delivered per 10-minute bin", series))

    assert series.environment == "urban"
    assert set(series.series_by_scheme) == set(TIMESERIES_SCALE.schemes)
    for scheme in TIMESERIES_SCALE.schemes:
        assert series.total(scheme) > 0
