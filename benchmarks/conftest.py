"""Shared fixtures for the benchmark harness.

The benchmarks reproduce every figure of the paper's evaluation at a reduced
but density-preserving scale (see DESIGN.md / EXPERIMENTS.md).  Figures 8, 9,
12 and 13 are all views over the same gateway-density sweep, so that sweep is
run once per session and shared.

Every benchmark session also writes a ``BENCH_results.json`` artifact with
the per-benchmark wall-clock times (override the location with the
``REPRO_BENCH_RESULTS`` environment variable, or set it to an empty string to
disable).  CI uploads the file per run, so the performance trajectory is
comparable across PRs without scraping pytest output.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Dict

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments.figures import ReproductionScale, run_density_sweep  # noqa: E402
from repro.experiments.parallel import SweepExecutor  # noqa: E402

#: Scale used for the density sweep behind Figs. 8, 9, 12 and 13.
SWEEP_SCALE = ReproductionScale(
    spatial_scale=0.08,
    duration_s=2.0 * 3600.0,
    gateway_counts=(40, 70, 100),
    seed=7,
)

#: Scale used for the 24-hour style time-series figures (Figs. 10 and 11);
#: a smaller fleet over a longer horizon keeps the diurnal shape visible
#: while staying benchmark-sized.
TIMESERIES_SCALE = ReproductionScale(
    spatial_scale=0.05,
    duration_s=2.0 * 3600.0,
    timeseries_duration_s=10.0 * 3600.0,
    gateway_counts=(100,),
    seed=7,
)

#: Scale used for the ablation benchmarks.
ABLATION_SCALE = ReproductionScale(
    spatial_scale=0.06,
    duration_s=2.0 * 3600.0,
    gateway_counts=(70,),
    seed=7,
)


#: Default artifact path, relative to the invocation directory.
BENCH_RESULTS_ENV_VAR = "REPRO_BENCH_RESULTS"
DEFAULT_BENCH_RESULTS_PATH = "BENCH_results.json"

_BENCH_DURATIONS: Dict[str, Dict[str, object]] = {}
_BENCH_BEST: Dict[str, Dict[str, object]] = {}


def _results_path() -> str:
    return os.environ.get(BENCH_RESULTS_ENV_VAR, DEFAULT_BENCH_RESULTS_PATH)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Capture per-round benchmark stats so the artifact can record best-of-N.

    Tests using the ``benchmark`` fixture (the engine-core ladder runs
    ``pedantic`` with 3 rounds) get a ``best_wall_time_s`` field holding the
    minimum round time — the noise-robust number ``compare_bench.py`` diffs —
    next to the raw call-phase ``wall_time_s``.
    """
    yield
    benchmark = getattr(item, "funcargs", {}).get("benchmark")
    stats = getattr(benchmark, "stats", None) if benchmark is not None else None
    stats = getattr(stats, "stats", None)
    if stats is None or not getattr(stats, "data", None):
        return
    _BENCH_BEST[item.nodeid] = {
        "best_wall_time_s": round(stats.min, 6),
        "rounds": stats.rounds,
    }


def pytest_runtest_logreport(report):
    """Record the wall-clock of every benchmark test's call phase."""
    if report.when != "call":
        return
    _BENCH_DURATIONS[report.nodeid] = {
        "wall_time_s": round(report.duration, 6),
        "outcome": report.outcome,
        **_BENCH_BEST.get(report.nodeid, {}),
    }


def pytest_sessionfinish(session, exitstatus):
    """Write the per-benchmark wall-clock artifact (one JSON per session)."""
    del session, exitstatus
    path = _results_path()
    if not path or not _BENCH_DURATIONS:
        return
    payload = {
        "schema_version": 1,
        "unix_time": time.time(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        # Which engine leg of the CI matrix produced this artifact (the env
        # override only applies to configs that don't pin an engine).
        "engine": os.environ.get("REPRO_ENGINE", "object") or "object",
        "benchmarks": [
            {"nodeid": nodeid, **record}
            for nodeid, record in sorted(_BENCH_DURATIONS.items())
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


@pytest.fixture(scope="session")
def density_sweep():
    """The shared (scheme × gateway count × device range) sweep.

    Serial by default; exporting ``REPRO_SWEEP_WORKERS=n`` fans the 18 runs
    out over ``n`` processes without changing any result.
    """
    return run_density_sweep(SWEEP_SCALE, executor=SweepExecutor.from_env())
