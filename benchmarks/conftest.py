"""Shared fixtures for the benchmark harness.

The benchmarks reproduce every figure of the paper's evaluation at a reduced
but density-preserving scale (see DESIGN.md / EXPERIMENTS.md).  Figures 8, 9,
12 and 13 are all views over the same gateway-density sweep, so that sweep is
run once per session and shared.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments.figures import ReproductionScale, run_density_sweep  # noqa: E402
from repro.experiments.parallel import SweepExecutor  # noqa: E402

#: Scale used for the density sweep behind Figs. 8, 9, 12 and 13.
SWEEP_SCALE = ReproductionScale(
    spatial_scale=0.08,
    duration_s=2.0 * 3600.0,
    gateway_counts=(40, 70, 100),
    seed=7,
)

#: Scale used for the 24-hour style time-series figures (Figs. 10 and 11);
#: a smaller fleet over a longer horizon keeps the diurnal shape visible
#: while staying benchmark-sized.
TIMESERIES_SCALE = ReproductionScale(
    spatial_scale=0.05,
    duration_s=2.0 * 3600.0,
    timeseries_duration_s=10.0 * 3600.0,
    gateway_counts=(100,),
    seed=7,
)

#: Scale used for the ablation benchmarks.
ABLATION_SCALE = ReproductionScale(
    spatial_scale=0.06,
    duration_s=2.0 * 3600.0,
    gateway_counts=(70,),
    seed=7,
)


@pytest.fixture(scope="session")
def density_sweep():
    """The shared (scheme × gateway count × device range) sweep.

    Serial by default; exporting ``REPRO_SWEEP_WORKERS=n`` fans the 18 runs
    out over ``n`` processes without changing any result.
    """
    return run_density_sweep(SWEEP_SCALE, executor=SweepExecutor.from_env())
