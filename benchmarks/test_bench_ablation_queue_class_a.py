"""Ablation — Modified Class-C versus Queue-based Class-A (Sec. VI / VII-C).

The paper reports that Queue-based Class-A performs on par with Modified
Class-C while saving some (under 20 %) energy.
"""

from benchmarks.conftest import ABLATION_SCALE
from repro.experiments.figures import ablation_device_class
from repro.experiments.reporting import format_metric_comparison


def test_bench_ablation_queue_class_a(benchmark):
    results = benchmark.pedantic(
        ablation_device_class, kwargs={"scale": ABLATION_SCALE}, rounds=1, iterations=1
    )
    print()
    print(
        format_metric_comparison(
            "Ablation — device classes (ROBC scheme)",
            results,
            ("mean_delay_s", "throughput_messages", "mean_energy_joules"),
        )
    )
    modified_c = results["modified-class-c"]
    queue_a = results["queue-based-class-a"]
    # Energy must not increase, throughput must stay in the same ballpark.
    assert queue_a.mean_energy_joules <= modified_c.mean_energy_joules * 1.01
    assert queue_a.throughput_messages >= 0.7 * modified_c.throughput_messages
