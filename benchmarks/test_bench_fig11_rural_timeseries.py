"""Fig. 11 — throughput over the day, rural (1000 m device-to-device range)."""

from benchmarks.conftest import TIMESERIES_SCALE
from repro.experiments.figures import figure11_rural_timeseries
from repro.experiments.reporting import format_timeseries


def test_bench_fig11_rural_timeseries(benchmark):
    series = benchmark.pedantic(
        figure11_rural_timeseries, args=(TIMESERIES_SCALE,), rounds=1, iterations=1
    )
    print()
    print(format_timeseries("Fig. 11 — messages delivered per 10-minute bin", series))

    assert series.environment == "rural"
    for scheme in TIMESERIES_SCALE.schemes:
        assert series.total(scheme) > 0
    # Paper: in the rural setting ROBC matches or beats plain LoRaWAN overall.
    assert series.total("robc") >= 0.8 * series.total("no-routing")
