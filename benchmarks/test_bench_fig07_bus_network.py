"""Fig. 7 — properties of the (synthetic) London bus network.

Regenerates the two panels of Fig. 7: the number of active buses over 24 hours
(diurnal profile) and the distribution of bus active durations.
"""

import numpy as np

from benchmarks.conftest import SWEEP_SCALE
from repro.experiments.figures import figure07_bus_network
from repro.experiments.reporting import format_bus_network


def test_bench_fig07_bus_network(benchmark):
    properties = benchmark.pedantic(
        figure07_bus_network, args=(SWEEP_SCALE,), rounds=1, iterations=1
    )
    print()
    print(format_bus_network("Fig. 7 — synthetic London bus network", properties))

    # Qualitative acceptance: a diurnal profile (daytime plateau above the
    # night trough) and a broad distribution of active durations.
    assert properties.peak_active_buses > 0
    assert properties.peak_active_buses >= properties.night_active_buses
    durations = np.asarray(properties.active_durations_s)
    assert durations.max() > 2.0 * durations.min()
