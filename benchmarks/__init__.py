"""Benchmark harness reproducing every figure of the paper's evaluation."""
