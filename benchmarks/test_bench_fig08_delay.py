"""Fig. 8 — average end-to-end delay versus gateway density.

The benchmark times one representative simulation run (ROBC, nominal 70
gateways, urban range); the printed table is derived from the shared
density sweep and reports the same rows as the paper's Fig. 8.
"""

from benchmarks.conftest import SWEEP_SCALE
from repro.experiments.figures import figure08_delay
from repro.experiments.reporting import format_figure_rows
from repro.experiments.runner import run_scenario
from repro.experiments.sweeps import URBAN_DEVICE_RANGE_M


def _representative_run():
    config = (
        SWEEP_SCALE.base_config()
        .with_scheme("robc")
        .with_gateways(max(1, round(70 * SWEEP_SCALE.spatial_scale)))
        .with_device_range(URBAN_DEVICE_RANGE_M)
    )
    return run_scenario(config)


def test_bench_fig08_delay(benchmark, density_sweep):
    metrics = benchmark.pedantic(_representative_run, rounds=1, iterations=1)
    assert metrics.messages_delivered > 0

    rows = figure08_delay(density_sweep)
    print()
    print(format_figure_rows("Fig. 8 — average end-to-end delay", rows, unit="s"))

    # Acceptance: every (environment, gateway count, scheme) combination has a
    # finite delay and all schemes deliver data at every density.
    assert len(rows) == 3 * len(SWEEP_SCALE.gateway_counts) * 2
    assert all(row.value >= 0.0 for row in rows)
