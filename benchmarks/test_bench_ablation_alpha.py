"""Ablation — the EWMA weight α of Eq. (4) (the paper fixes α = 0.5)."""

from benchmarks.conftest import ABLATION_SCALE
from repro.experiments.figures import ablation_alpha
from repro.experiments.reporting import format_metric_comparison


def test_bench_ablation_alpha(benchmark):
    results = benchmark.pedantic(
        ablation_alpha,
        kwargs={"scale": ABLATION_SCALE, "alphas": (0.1, 0.5, 0.9)},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_metric_comparison(
            "Ablation — EWMA weight α (RCA-ETX scheme)",
            results,
            ("mean_delay_s", "throughput_messages", "mean_hop_count"),
        )
    )
    assert set(results) == {0.1, 0.5, 0.9}
    assert all(run.messages_delivered > 0 for run in results.values())
