"""Serial versus parallel execution of the Fig. 9-style density sweep.

Runs the same (scheme × gateway count) sweep through a ``workers=1`` and a
``workers=4`` :class:`SweepExecutor`, asserts the results are bit-identical,
and reports the wall-clock speedup.  The speedup assertion only arms on hosts
with at least eight CPUs (or ``REPRO_BENCH_STRICT=1``): single-shot timings on
small shared runners — 1-CPU dev boxes, 4-vCPU CI tenants — are too noisy to
gate a build on, while the equivalence assertion is exact everywhere.
"""

import os
import time

from benchmarks.conftest import SWEEP_SCALE
from repro.experiments.figures import ReproductionScale, run_density_sweep
from repro.experiments.parallel import SweepExecutor
from repro.experiments.reporting import format_table
from repro.experiments.sweeps import URBAN_DEVICE_RANGE_M

#: A lighter cut of the shared benchmark scale: the sweep runs twice here.
PARALLEL_SCALE = ReproductionScale(
    spatial_scale=0.05,
    duration_s=1.5 * 3600.0,
    gateway_counts=SWEEP_SCALE.gateway_counts,
    seed=SWEEP_SCALE.seed,
)


def test_bench_parallel_sweep_equivalence_and_speedup(benchmark):
    ranges = (URBAN_DEVICE_RANGE_M,)

    start = time.perf_counter()
    serial = run_density_sweep(
        PARALLEL_SCALE, device_ranges_m=ranges, executor=SweepExecutor(workers=1)
    )
    serial_s = time.perf_counter() - start

    def parallel_sweep():
        return run_density_sweep(
            PARALLEL_SCALE, device_ranges_m=ranges, executor=SweepExecutor(workers=4)
        )

    start = time.perf_counter()
    parallel = benchmark.pedantic(parallel_sweep, rounds=1, iterations=1)
    parallel_s = time.perf_counter() - start

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print()
    print(
        format_table(
            ("executor", "runs", "wall [s]"),
            [
                ("workers=1", len(serial.runs), f"{serial_s:.2f}"),
                ("workers=4", len(parallel.runs), f"{parallel_s:.2f}"),
                (f"speedup (on {os.cpu_count()} cpus)", "", f"{speedup:.2f}x"),
            ],
        )
    )

    # Parallelism must never change results.
    assert set(serial.runs) == set(parallel.runs)
    for key, metrics in serial.runs.items():
        assert metrics == parallel.runs[key], f"run {key} diverged"

    # Wall-clock acceptance only where the hardware can express it reliably.
    strict = os.environ.get("REPRO_BENCH_STRICT") == "1"
    if strict or (os.cpu_count() or 1) >= 8:
        assert speedup >= 1.5, f"expected >=1.5x speedup, got {speedup:.2f}x"
