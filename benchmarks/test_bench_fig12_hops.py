"""Fig. 12 — average number of hops per delivered message."""

from repro.experiments.figures import figure12_hops
from repro.experiments.reporting import format_figure_rows


def test_bench_fig12_hops(benchmark, density_sweep):
    rows = benchmark.pedantic(figure12_hops, args=(density_sweep,), rounds=1, iterations=1)
    print()
    print(format_figure_rows("Fig. 12 — average delivery hop count", rows, unit="hops"))

    # Paper: plain LoRaWAN messages always have hop count exactly 1, while the
    # forwarding schemes travel over more than one hop on average.
    baseline_rows = [row for row in rows if row.scheme == "no-routing"]
    assert all(abs(row.value - 1.0) < 1e-9 for row in baseline_rows)

    forwarding_rows = [row for row in rows if row.scheme in ("rca-etx", "robc")]
    assert all(row.value >= 1.0 for row in forwarding_rows)
    assert any(row.value > 1.0 for row in forwarding_rows)
