"""Micro-benchmark of the vectorized contact-extraction pipeline.

Pins the two properties the mobility tentpole promises:

* the vectorized per-pair extractor is ≥5× faster than the scalar reference
  scan on the same workload (the PR acceptance floor; in practice it is far
  beyond that at fine sample steps), while returning identical intervals;
* the spatially pruned all-pairs contact graph visits far fewer pairs than
  N·(N−1)/2 without losing a single interval.

Wall-clock results land in ``BENCH_results.json`` via the shared conftest.
"""

import time

from repro.mobility.london import LondonBusNetworkConfig, LondonBusNetworkGenerator
from repro.network.contact import (
    _candidate_pairs,
    extract_contact_graph,
    extract_contacts,
    extract_contacts_scalar,
)
from repro.sim.randomness import RandomStreams

RANGE_M = 500.0
STEP_S = 5.0

#: A compact daytime fleet with long, overlapping service spans, so pair
#: grids are thousands of samples — the regime the vectorization targets.
NETWORK = LondonBusNetworkConfig(
    area_km2=40.0,
    num_routes=10,
    trips_per_route=3,
    stops_per_route=8,
    min_repeats=2,
    max_repeats=4,
    horizon_s=6 * 3600.0,
    day_start_s=0.25 * 5.5 * 3600.0,
    day_end_s=0.25 * 22.0 * 3600.0,
)


def _fleet():
    generator = LondonBusNetworkGenerator(NETWORK, RandomStreams(7).stream("mobility"))
    return generator.generate().traces()


def test_bench_vectorized_pair_extraction_beats_scalar_oracle(benchmark):
    traces = _fleet()
    pairs = [
        (first, second)
        for index, first in enumerate(traces)
        for second in traces[index + 1:]
    ]

    def run_vectorized():
        return [extract_contacts(a, b, RANGE_M, STEP_S) for a, b in pairs]

    vectorized = benchmark.pedantic(run_vectorized, rounds=3, iterations=1)

    start = time.perf_counter()
    scalar = [extract_contacts_scalar(a, b, RANGE_M, STEP_S) for a, b in pairs]
    scalar_s = time.perf_counter() - start
    start = time.perf_counter()
    run_vectorized()
    vectorized_s = time.perf_counter() - start

    assert scalar == vectorized, "vectorized pipeline diverged from the oracle"
    speedup = scalar_s / max(vectorized_s, 1e-9)
    print()
    print(
        f"pairs={len(pairs)} contacts={sum(len(c) for c in scalar)} "
        f"scalar={scalar_s:.3f}s vectorized={vectorized_s:.3f}s "
        f"speedup={speedup:.1f}x"
    )
    # The PR acceptance floor; the headroom above 5x absorbs CI noise.
    assert speedup >= 5.0, f"vectorized path only {speedup:.1f}x faster than the oracle"


def test_bench_contact_graph_prunes_pairs_without_losing_contacts(benchmark):
    traces = _fleet()

    graph = benchmark.pedantic(
        lambda: extract_contact_graph(traces, RANGE_M, STEP_S), rounds=3, iterations=1
    )

    brute = [
        interval
        for index, first in enumerate(traces)
        for second in traces[index + 1:]
        for interval in extract_contacts(first, second, RANGE_M, STEP_S)
    ]
    assert graph == brute, "pruned contact graph lost or reordered intervals"

    all_pairs = len(traces) * (len(traces) - 1) // 2
    candidates = len(_candidate_pairs(traces, RANGE_M, 900.0))
    print()
    print(
        f"traces={len(traces)} all-pairs={all_pairs} candidates={candidates} "
        f"pruning={all_pairs / max(candidates, 1):.1f}x contacts={len(brute)}"
    )
    assert candidates < all_pairs
