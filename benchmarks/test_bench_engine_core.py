"""Core engine benchmark: the array engine against the object oracle.

Times the *engine only*: scenario construction (~1 s of trip-trace synthesis
at full scale) is identical on both paths and would dilute the ratio, so it
happens in the untimed ``setup`` of every round and each round gets a fresh
scenario (engines mutate device state).

The ladder is the full-scale Sec. VII-A urban scenario under plain LoRaWAN
at quarter/half/full fleet (240/480/960 buses, density-preserving shrink),
one simulated hour.  The headline assertion — the reason the array engine
exists — is a ≥ 5× wall-clock floor at 960 buses, compared on min-over-
rounds so scheduler noise cannot flip it.  A density-preserving slice of the
``megacity-10k`` preset (1000 buses) closes the ladder as the array-only
smoke point.
"""

import time
from dataclasses import replace

from repro.engine.array_engine import ArrayMLoRaSimulation
from repro.experiments.registry import apply_overrides, get_preset
from repro.experiments.runner import MLoRaSimulation
from repro.experiments.scenario import build_scenario

#: Wall-clock floor for the array engine at the 960-bus point.
SPEEDUP_FLOOR = 5.0

ENGINES = {"object": MLoRaSimulation, "array": ArrayMLoRaSimulation}


def _fleet_config(fraction: float):
    """The urban-full scenario shrunk density-preservingly to ``fraction``
    of the 960-bus fleet, one simulated hour of plain LoRaWAN."""
    config = get_preset("urban-full").config
    if fraction < 1.0:
        config = config.scaled(fraction)
    return replace(config, duration_s=3600.0, scheme="no-routing")


def _bench_engine(benchmark, config, engine_name: str):
    def setup():
        return (build_scenario(config),), {}

    def run(scenario):
        return ENGINES[engine_name](scenario).run()

    metrics = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    assert metrics.messages_generated > 0
    return metrics


def _engine_seconds(config, engine_name: str, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        scenario = build_scenario(config)
        start = time.perf_counter()
        ENGINES[engine_name](scenario).run()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_engine_object_240(benchmark):
    _bench_engine(benchmark, _fleet_config(0.25), "object")


def test_bench_engine_array_240(benchmark):
    _bench_engine(benchmark, _fleet_config(0.25), "array")


def test_bench_engine_object_480(benchmark):
    _bench_engine(benchmark, _fleet_config(0.5), "object")


def test_bench_engine_array_480(benchmark):
    _bench_engine(benchmark, _fleet_config(0.5), "array")


def test_bench_engine_object_960(benchmark):
    _bench_engine(benchmark, _fleet_config(1.0), "object")


def test_bench_engine_array_960(benchmark):
    _bench_engine(benchmark, _fleet_config(1.0), "array")


def test_bench_engine_speedup_floor_960():
    """The contract number: array ≥ 5× object at the 960-bus point.

    Both engines produce bit-identical RunMetrics (tests/engine/), so this
    is pure wall-clock; min-over-rounds on each side discards scheduler
    noise before the ratio is taken.
    """
    config = _fleet_config(1.0)
    array_s = _engine_seconds(config, "array", rounds=5)
    object_s = _engine_seconds(config, "object", rounds=3)
    speedup = object_s / array_s
    print()
    print(
        f"engine core 960 buses / 1 h: object {object_s:.2f}s, "
        f"array {array_s:.2f}s, speedup {speedup:.2f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"array engine speedup regressed to {speedup:.2f}x "
        f"(floor {SPEEDUP_FLOOR}x) at the 960-bus point"
    )


def test_bench_engine_megacity_smoke(benchmark):
    """A 1000-bus density-preserving slice of megacity-10k on the array
    path — the preset's engine pin survives the override machinery."""
    config = apply_overrides(
        get_preset("megacity-10k").config, scale=0.1, duration_s=900.0
    )
    assert config.engine.engine == "array"
    metrics = _bench_engine(benchmark, config, "array")
    assert metrics.scheme == "no-routing"
