"""Core engine benchmark: the array engine against the object oracle.

Times the *engine only*: scenario construction (~1 s of trip-trace synthesis
at full scale) is identical on both paths and would dilute the ratio, so it
happens in the untimed ``setup`` of every round and each round gets a fresh
scenario (engines mutate device state).  The ladder configs and timing
helpers live in :mod:`repro.experiments.bench` so ``repro bench`` runs the
same comparison from the CLI.

The ladder is the full-scale Sec. VII-A urban scenario under plain LoRaWAN
at quarter/half/full fleet (240/480/960 buses, density-preserving shrink),
one simulated hour, with every point timed best-of-3 so the recorded
artifact numbers are comparable across runs.  Two wall-clock floors guard
the reason the array engine exists: ≥ 5× at 960 buses under plain LoRaWAN
and ≥ 4× under ROBC, whose forwarding/overhear hot path is the expensive
part the batched candidacy and scheme hooks vectorize.  A density-preserving
slice of the ``megacity-10k`` preset (1000 buses) closes the ladder as the
array-only smoke point; the full preset runs only in the scheduled CI job.
"""

import os

import pytest

from repro.experiments.bench import ENGINES, engine_seconds, fleet_config
from repro.experiments.registry import apply_overrides, get_preset
from repro.experiments.scenario import build_scenario

#: Wall-clock floor for the array engine at the 960-bus point (plain LoRaWAN).
SPEEDUP_FLOOR = 5.0

#: Wall-clock floor at 960 buses under ROBC, which exercises the
#: forwarding/overhear hot path on every transmission slot.
ROBC_SPEEDUP_FLOOR = 4.0

#: Rounds per ladder point; the artifact records the best of these.
LADDER_ROUNDS = 3


def _bench_engine(benchmark, config, engine_name: str, rounds: int = LADDER_ROUNDS):
    def setup():
        return (build_scenario(config),), {}

    def run(scenario):
        return ENGINES[engine_name](scenario).run()

    metrics = benchmark.pedantic(run, setup=setup, rounds=rounds, iterations=1)
    assert metrics.messages_generated > 0
    return metrics


def test_bench_engine_object_240(benchmark):
    _bench_engine(benchmark, fleet_config(0.25), "object")


def test_bench_engine_array_240(benchmark):
    _bench_engine(benchmark, fleet_config(0.25), "array")


def test_bench_engine_object_480(benchmark):
    _bench_engine(benchmark, fleet_config(0.5), "object")


def test_bench_engine_array_480(benchmark):
    _bench_engine(benchmark, fleet_config(0.5), "array")


def test_bench_engine_object_960(benchmark):
    _bench_engine(benchmark, fleet_config(1.0), "object")


def test_bench_engine_array_960(benchmark):
    _bench_engine(benchmark, fleet_config(1.0), "array")


def test_bench_engine_speedup_floor_960():
    """The contract number: array ≥ 5× object at the 960-bus point.

    Both engines produce bit-identical RunMetrics (tests/engine/), so this
    is pure wall-clock; min-over-rounds on each side discards scheduler
    noise before the ratio is taken.
    """
    config = fleet_config(1.0)
    array_s = engine_seconds(config, "array", rounds=5)
    object_s = engine_seconds(config, "object", rounds=3)
    speedup = object_s / array_s
    print()
    print(
        f"engine core 960 buses / 1 h: object {object_s:.2f}s, "
        f"array {array_s:.2f}s, speedup {speedup:.2f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"array engine speedup regressed to {speedup:.2f}x "
        f"(floor {SPEEDUP_FLOOR}x) at the 960-bus point"
    )


def test_bench_engine_speedup_floor_robc_960():
    """Forwarding hot path contract: array ≥ 4× object at 960 buses under ROBC.

    ROBC makes every completed uplink fan out to its overhearers, so this
    floor is the one the batched neighbour candidacy and
    ``on_overhear_batch`` vectorization exist to hold.  The object run
    dominates the budget (~40 s), so it gets a single round; the array side
    takes best-of-2 to keep the ratio noise-robust.
    """
    config = fleet_config(1.0, scheme="robc")
    array_s = engine_seconds(config, "array", rounds=2)
    object_s = engine_seconds(config, "object", rounds=1)
    speedup = object_s / array_s
    print()
    print(
        f"engine core 960 buses / 1 h ROBC: object {object_s:.2f}s, "
        f"array {array_s:.2f}s, speedup {speedup:.2f}x"
    )
    assert speedup >= ROBC_SPEEDUP_FLOOR, (
        f"array engine ROBC speedup regressed to {speedup:.2f}x "
        f"(floor {ROBC_SPEEDUP_FLOOR}x) at the 960-bus point"
    )


def test_bench_engine_megacity_smoke(benchmark):
    """A 1000-bus density-preserving slice of megacity-10k on the array
    path — the preset's engine pin survives the override machinery."""
    config = apply_overrides(
        get_preset("megacity-10k").config, scale=0.1, duration_s=900.0
    )
    assert config.engine.engine == "array"
    metrics = _bench_engine(benchmark, config, "array", rounds=1)
    assert metrics.scheme == "no-routing"


@pytest.mark.skipif(
    not os.environ.get("REPRO_FULL_MEGACITY"),
    reason="full megacity-10k preset runs only in the scheduled CI job "
    "(set REPRO_FULL_MEGACITY=1 to opt in)",
)
def test_bench_engine_megacity_full(benchmark):
    """The full megacity-10k preset, unscaled, on the array engine.

    Scheduled-CI only: the 10k-bus fleet takes minutes, so interactive and
    per-PR runs skip it.  The wall-clock lands in ``BENCH_results.json``
    (with the ``engine`` tag) via the benchmarks conftest, giving the
    at-scale trend line without taxing every PR.
    """
    config = get_preset("megacity-10k").config
    assert config.engine.engine == "array"
    metrics = _bench_engine(benchmark, config, "array", rounds=1)
    assert metrics.messages_generated > 0
