"""Ablation — grid versus random gateway placement (Sec. VII-C discussion)."""

from benchmarks.conftest import ABLATION_SCALE
from repro.experiments.figures import ablation_gateway_placement
from repro.experiments.reporting import format_metric_comparison


def test_bench_ablation_placement(benchmark):
    results = benchmark.pedantic(
        ablation_gateway_placement, kwargs={"scale": ABLATION_SCALE}, rounds=1, iterations=1
    )
    print()
    for placement, runs in results.items():
        print(
            format_metric_comparison(
                f"Ablation — {placement} gateway placement",
                runs,
                ("mean_delay_s", "throughput_messages"),
            )
        )
        print()

    assert set(results) == {"grid", "random"}
    for runs in results.values():
        assert set(runs) == set(ABLATION_SCALE.schemes)
        assert all(run.messages_delivered > 0 for run in runs.values())
