"""Micro-benchmark of the neighbour overhear fan-out in the engine hot path.

Every uplink of a forwarding scheme triggers a device-range neighbour query
plus per-neighbour channel/SF/listening checks (the fan-out), and every
completion replays the overhearers through the scheme.  When the configured
scheme reports ``uses_forwarding=False`` the engine skips that work entirely
— plain LoRaWAN pays nothing for the routing hook.  The two timed runs here
put a number on both sides of that gate in ``BENCH_results.json``:

* ``forwarding`` — ROBC, the full fan-out on every uplink;
* ``skipped`` — no-routing on the *same* scenario, fan-out bypassed.
"""

from repro.experiments.figures import ReproductionScale
from repro.experiments.runner import MLoRaSimulation
from repro.experiments.scenario import build_scenario
from repro.experiments.sweeps import URBAN_DEVICE_RANGE_M

#: A dense slice: many concurrently active buses in device range of each
#: other, so the overhear fan-out dominates the uplink path.
FANOUT_SCALE = ReproductionScale(
    spatial_scale=0.08,
    duration_s=2.0 * 3600.0,
    gateway_counts=(70,),
    seed=7,
)


def _config(scheme: str):
    return (
        FANOUT_SCALE.base_config()
        .with_scheme(scheme)
        .with_gateways(max(1, round(70 * FANOUT_SCALE.spatial_scale)))
        .with_device_range(URBAN_DEVICE_RANGE_M)
    )


def _run(scheme: str):
    simulation = MLoRaSimulation(build_scenario(_config(scheme)))
    metrics = simulation.run()
    return metrics, simulation


def test_bench_overhear_fanout_forwarding(benchmark):
    """The full fan-out: ROBC consults the scheme on every overheard uplink."""
    metrics, simulation = benchmark.pedantic(_run, args=("robc",), rounds=1, iterations=1)
    assert metrics.messages_delivered > 0
    # The fan-out actually fired: devices overheard and handed messages over.
    assert simulation.handover_count > 0
    print()
    print(
        f"overhear fan-out (robc): {metrics.messages_generated} generated, "
        f"{simulation.handover_count} handover frames, "
        f"{simulation.handed_over_messages} messages re-carried"
    )


def test_bench_overhear_fanout_skipped(benchmark):
    """The gated path: no-routing skips the neighbour fan-out entirely."""
    metrics, simulation = benchmark.pedantic(
        _run, args=("no-routing",), rounds=1, iterations=1
    )
    assert metrics.messages_delivered > 0
    # The gate held: no neighbour ever consulted, no handover ever sent.
    assert simulation.handover_count == 0
    assert simulation.handed_over_messages == 0
    assert all(h == 1 for h in metrics.hop_counts)
    print()
    print(
        f"overhear fan-out skipped (no-routing): "
        f"{metrics.messages_generated} generated, "
        f"{metrics.messages_delivered} delivered, 0 handover frames"
    )
