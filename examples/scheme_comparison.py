"""Compare NoRouting, RCA-ETX and ROBC on the same bus-network scenario.

This is a miniature version of the paper's evaluation: one registry preset
(`quickstart`, lengthened to three hours) is simulated once per forwarding
scheme — derived with ``apply_overrides``, exactly what the CLI's
``repro run quickstart --scheme rca-etx`` does — and the delay / throughput /
hop-count / overhead metrics are printed side by side (the quantities
plotted in Figs. 8, 9, 12 and 13).

Usage::

    PYTHONPATH=src python examples/scheme_comparison.py
"""

from repro.analysis.stats import improvement_percent, reduction_percent
from repro.experiments import get_preset, run_scenario
from repro.experiments.registry import apply_overrides
from repro.experiments.reporting import format_table


def main() -> None:
    base = apply_overrides(
        get_preset("quickstart").config,
        duration_s=3 * 3600.0,
        num_routes=10,
        trips_per_route=6,
        num_gateways=5,
        seed=11,
    )

    runs = {
        scheme: run_scenario(apply_overrides(base, scheme=scheme))
        for scheme in ("no-routing", "rca-etx", "robc")
    }

    rows = []
    for scheme, metrics in runs.items():
        rows.append(
            (
                scheme,
                f"{metrics.mean_delay_s:.1f}",
                metrics.throughput_messages,
                f"{metrics.delivery_ratio:.2%}",
                f"{metrics.mean_hop_count:.2f}",
                f"{metrics.mean_messages_sent_per_node:.1f}",
            )
        )
    print(
        format_table(
            ("scheme", "mean delay [s]", "delivered", "ratio", "hops", "frames/node"),
            rows,
        )
    )

    baseline = runs["no-routing"]
    robc = runs["robc"]
    if baseline.throughput_messages:
        gain = improvement_percent(baseline.throughput_messages, robc.throughput_messages)
        print(f"\nROBC throughput change vs plain LoRaWAN: {gain:+.1f}%")
    if baseline.mean_delay_s and robc.mean_delay_s:
        delta = reduction_percent(baseline.mean_delay_s, robc.mean_delay_s)
        print(f"ROBC delay reduction vs plain LoRaWAN:   {delta:+.1f}%")


if __name__ == "__main__":
    main()
