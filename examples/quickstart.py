"""Quickstart: run one small MLoRa-SS simulation and print its metrics.

Runs the registered ``quickstart`` preset — the same scenario as
``repro run quickstart`` — through the Python API.  The two entry points are
bit-identical; use whichever fits your workflow.

Usage::

    PYTHONPATH=src python examples/quickstart.py
"""

from repro.experiments import get_preset, run_scenario


def main() -> None:
    # A small scenario: a 30 km2 slice of the city, 4 gateways on a grid,
    # 24 buses running for two hours, ROBC forwarding between them.
    preset = get_preset("quickstart")
    config = preset.config
    metrics = run_scenario(config)

    print("Quickstart ROBC run (preset `quickstart`)")
    print(f"  devices (bus trips):       {config.num_routes * config.trips_per_route}")
    print(f"  messages generated:        {metrics.messages_generated}")
    print(f"  messages delivered:        {metrics.messages_delivered}")
    print(f"  delivery ratio:            {metrics.delivery_ratio:.2%}")
    print(f"  mean end-to-end delay:     {metrics.mean_delay_s:.1f} s")
    print(f"  mean hop count:            {metrics.mean_hop_count:.2f}")
    print(f"  frames sent per device:    {metrics.mean_messages_sent_per_node:.1f}")
    print(f"  mean energy per device:    {metrics.mean_energy_joules:.1f} J")


if __name__ == "__main__":
    main()
