"""Quickstart: run one small MLoRa-SS simulation and print its metrics.

Usage::

    python examples/quickstart.py
"""

from repro.experiments import ScenarioConfig, run_scenario


def main() -> None:
    # A small scenario: a 30 km2 slice of the city, 4 gateways on a grid,
    # 24 buses running for two hours, ROBC forwarding between them.
    config = ScenarioConfig(
        name="quickstart",
        seed=42,
        duration_s=2 * 3600.0,
        area_km2=30.0,
        num_gateways=4,
        num_routes=6,
        trips_per_route=4,
        device_range_m=1000.0,
        scheme="robc",
    )
    metrics = run_scenario(config)

    print("Quickstart ROBC run")
    print(f"  devices (bus trips):       {config.num_routes * config.trips_per_route}")
    print(f"  messages generated:        {metrics.messages_generated}")
    print(f"  messages delivered:        {metrics.messages_delivered}")
    print(f"  delivery ratio:            {metrics.delivery_ratio:.2%}")
    print(f"  mean end-to-end delay:     {metrics.mean_delay_s:.1f} s")
    print(f"  mean hop count:            {metrics.mean_hop_count:.2f}")
    print(f"  frames sent per device:    {metrics.mean_messages_sent_per_node:.1f}")
    print(f"  mean energy per device:    {metrics.mean_energy_joules:.1f} J")


if __name__ == "__main__":
    main()
