"""Study how gateway density affects each forwarding scheme (mini Fig. 8/9).

Sweeps the number of gateways for a fixed bus network and prints delay and
throughput per scheme, i.e. a reduced version of the paper's Figs. 8 and 9.
The base scenario comes from the registry (the CI-sized ``rural-smoke``
preset, lengthened to two hours); the nine runs fan out over one worker
process per CPU via the :class:`SweepExecutor` and are served from the
on-disk cache on a re-run — results are identical in every mode, because
each run is fully determined by its configuration.

The CLI equivalent of the full-size version of this study is
``repro sweep fig8``/``repro sweep fig9``.

Usage::

    PYTHONPATH=src python examples/gateway_density_study.py
"""

import os

from repro.experiments import SweepExecutor, get_preset
from repro.experiments.registry import apply_overrides
from repro.experiments.reporting import format_table
from repro.experiments.sweeps import run_gateway_sweep


def main() -> None:
    base = apply_overrides(
        get_preset("rural-smoke").config,
        duration_s=2 * 3600.0,
        num_routes=10,
        trips_per_route=4,
        seed=17,
    )
    cache_dir = os.path.join(os.path.dirname(__file__), ".sweep-cache")
    if os.path.isdir(cache_dir) and os.listdir(cache_dir):
        print(f"note: serving matching runs from {cache_dir} (delete it to recompute)")
    executor = SweepExecutor.from_env(
        default_workers=os.cpu_count() or 1,
        cache_dir=cache_dir,
    )
    sweep = run_gateway_sweep(
        base,
        gateway_counts=(3, 5, 8),
        schemes=("no-routing", "rca-etx", "robc"),
        device_ranges_m=(1000.0,),
        executor=executor,
    )

    rows = []
    for count in sweep.gateway_counts():
        for scheme in sweep.schemes():
            run = sweep.get(scheme, count, 1000.0)
            rows.append(
                (count, scheme, f"{run.mean_delay_s:.1f}", run.throughput_messages,
                 f"{run.delivery_ratio:.2%}")
            )
    print(format_table(("gateways", "scheme", "mean delay [s]", "delivered", "ratio"), rows))


if __name__ == "__main__":
    main()
