"""Plug a custom forwarding scheme into the simulator.

The public :class:`~repro.routing.base.ForwardingScheme` interface lets you
experiment with your own handover policies without touching the engine.  This
example implements a simple "forward only to nearly-idle, recently-connected
neighbours" policy and compares it against ROBC on the same scenario.

Two integration points exist:

* swap a hand-built scheme *object* onto a built scenario (shown in
  ``run_with_scheme`` below), or
* register a *factory* with ``repro.routing.register_scheme_factory`` so the
  scheme name becomes valid in any ``ScenarioConfig`` — scenario files,
  sweeps and the executor cache then treat it like a built-in (shown in
  ``main``).

Usage::

    PYTHONPATH=src python examples/custom_forwarding_scheme.py
"""

from repro.experiments import ScenarioConfig, run_scenario
from repro.experiments.runner import MLoRaSimulation
from repro.experiments.scenario import build_scenario
from repro.mac.device import EndDevice
from repro.mac.frames import UplinkPacket
from repro.phy.link import LinkCapacityModel
from repro.routing import register_scheme_factory
from repro.routing.base import ForwardingDecision, ForwardingScheme


class ConservativeHandover(ForwardingScheme):
    """Hand over only when the neighbour looks much better and nearly idle.

    The policy requires the neighbour's advertised RCA-ETX to be at least
    ``advantage_factor`` times smaller than our own and its queue to be below
    ``max_neighbour_queue`` messages, trading some delay for a very low
    forwarding overhead.
    """

    name = "conservative"
    requires_queue_length = True
    uses_forwarding = True

    def __init__(self, advantage_factor: float = 4.0, max_neighbour_queue: int = 6) -> None:
        self.advantage_factor = advantage_factor
        self.max_neighbour_queue = max_neighbour_queue

    def on_overhear(
        self,
        receiver: EndDevice,
        packet: UplinkPacket,
        link_rssi_dbm: float,
        capacity_model: LinkCapacityModel,
        now: float,
    ) -> ForwardingDecision:
        if packet.rca_etx_s is None or packet.queue_length is None:
            return ForwardingDecision.no()
        if not receiver.has_data():
            return ForwardingDecision.no()
        if packet.queue_length > self.max_neighbour_queue:
            return ForwardingDecision.no()
        if receiver.rca_etx.sink_metric() < self.advantage_factor * packet.rca_etx_s:
            return ForwardingDecision.no()
        return ForwardingDecision(forward=True, message_limit=min(6, receiver.queue_length()))


def run_with_scheme(config: ScenarioConfig, scheme: ForwardingScheme):
    """Build a scenario and swap in an externally constructed scheme object."""
    scenario = build_scenario(config)
    scenario.scheme = scheme
    simulation = MLoRaSimulation(scenario)
    metrics = simulation.run()
    return metrics, simulation.handover_count


def main() -> None:
    base = ScenarioConfig(
        name="custom-scheme",
        seed=23,
        duration_s=2 * 3600.0,
        area_km2=40.0,
        num_gateways=4,
        num_routes=8,
        trips_per_route=4,
        device_range_m=1000.0,
        scheme="robc",  # placeholder; replaced below for the custom run
    )

    robc_metrics, robc_handovers = run_with_scheme(base, build_scenario(base).scheme)
    custom_metrics, custom_handovers = run_with_scheme(base, ConservativeHandover())

    # The registry route: once a factory is registered, the name works
    # everywhere a built-in scheme name does (the max_handover_messages knob
    # of the scenario's RoutingConfig caps the custom handovers too).
    register_scheme_factory(
        "conservative",
        lambda routing: ConservativeHandover(
            max_neighbour_queue=min(6, routing.max_handover_messages)
        ),
    )
    registered_metrics = run_scenario(base.with_scheme("conservative"))

    print("ROBC:")
    print(f"  delivered={robc_metrics.messages_delivered}"
          f"  mean delay={robc_metrics.mean_delay_s:.1f}s  handovers={robc_handovers}")
    print("Conservative custom scheme:")
    print(f"  delivered={custom_metrics.messages_delivered}"
          f"  mean delay={custom_metrics.mean_delay_s:.1f}s  handovers={custom_handovers}")
    print("Conservative via registered factory:")
    print(f"  delivered={registered_metrics.messages_delivered}"
          f"  mean delay={registered_metrics.mean_delay_s:.1f}s")


if __name__ == "__main__":
    main()
